// Command eabench regenerates the tables and figures of the paper's
// evaluation section (Sec. 5).
//
// Usage:
//
//	eabench                          # everything, small default workload
//	eabench -fig 15 -queries 100     # one figure, bigger sample
//	eabench -table 2                 # the TPC-H table
//	eabench -queries 10000 -maxn 20  # the paper's full scale (slow!)
//	eabench -exec -sf 50             # execute plans on generated data
//	eabench -exec -query Q3 -sf 100  # one query, bigger instance
//	eabench -exec -sf 50 -workers 0  # parallel execution on all cores
//	eabench -exec -feedback -sf 1    # cardinality feedback loop report
//
// The flags mirror the feasibility limits reported in the paper: EA-All is
// only run up to -maxn-exhaustive relations and EA-Prune up to -maxn-prune.
//
// The -exec mode leaves the optimizer benchmarks behind and measures the
// execution runtime: each TPC-H query is optimized lazily (DPhyp) and
// eagerly (EA-Prune), both plans plus the canonical initial tree run on
// synthetic data scaled by -sf, results are verified to be identical, and
// the report shows wall time, throughput (intermediate + final rows per
// second) and the q-error between the C_out cost estimate and the
// measured intermediate-result volume. -workers applies to both the
// optimizer and the morsel-driven execution runtime; every worker count
// produces bit-identical plans and results, only the wall times change.
//
// -feedback (requires -exec) closes the cardinality feedback loop: each
// query is optimized, executed, the measured per-operator cardinalities
// are overlaid on the estimator, and the query is re-optimized — until
// the chosen plan is stable. The report compares the plan-level and
// worst-operator q-errors of the first (pure model) and final rounds,
// whether feedback changed the plan, and the measured C_out delta.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"eagg/internal/experiments"
)

func main() {
	fig := flag.Int("fig", 0, "figure to reproduce (15, 16, 17, 18); 0 = all")
	table := flag.Int("table", 0, "table to reproduce (1, 2); 0 = all")
	queries := flag.Int("queries", 20, "random queries per relation count (paper: 10000)")
	seed := flag.Int64("seed", 42, "workload seed")
	maxN := flag.Int("maxn", 14, "largest relation count for the fast algorithms (paper: 20)")
	maxNPrune := flag.Int("maxn-prune", 10, "largest relation count for EA-Prune (paper: ~13)")
	maxNExh := flag.Int("maxn-exhaustive", 7, "largest relation count for EA-All (paper: ~8)")
	workers := flag.Int("workers", 1, "workers per query for the optimizer and (with -exec) morsel-driven plan execution (0 = GOMAXPROCS, 1 = the paper's sequential conditions); plans and results are identical for every value")
	execMode := flag.Bool("exec", false, "execute optimized vs canonical plans on generated data instead of running optimizer benchmarks")
	feedback := flag.Bool("feedback", false, "with -exec: close the cardinality feedback loop (optimize → execute → re-optimize with measured cardinalities until the plan is stable) and report q-error before/after")
	sf := flag.Float64("sf", 10, "-exec: scale factor multiplying the base synthetic instance sizes (must be > 0)")
	execQuery := flag.String("query", "", "-exec: comma-separated TPC-H queries (Ex, Q3, Q5, Q10); empty = all")
	flag.Parse()
	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "eabench: -workers must be ≥ 0 (0 = all cores), got %d\n", *workers)
		os.Exit(2)
	}
	if *workers == 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	if *feedback && !*execMode {
		fmt.Fprintln(os.Stderr, "eabench: -feedback requires -exec (the feedback loop harvests cardinalities from plan execution)")
		os.Exit(2)
	}
	if *execMode && !(*sf > 0) { // rejects NaN too, unlike *sf <= 0
		fmt.Fprintf(os.Stderr, "eabench: -sf must be > 0, got %g\n", *sf)
		os.Exit(2)
	}

	cfg := experiments.Config{
		Queries:        *queries,
		Seed:           *seed,
		MaxN:           *maxN,
		MaxNPrune:      *maxNPrune,
		MaxNExhaustive: *maxNExh,
		Workers:        *workers,
	}

	if *execMode {
		var names []string
		if *execQuery != "" {
			for _, n := range strings.Split(*execQuery, ",") {
				names = append(names, strings.TrimSpace(n))
			}
		}
		if *feedback {
			rep := experiments.FeedbackEval(cfg, *sf, names)
			fmt.Print(rep.Format())
			if !rep.AllMatch() {
				fmt.Fprintln(os.Stderr, "eabench: some re-optimized plans did not reproduce the canonical result")
				os.Exit(1)
			}
			return
		}
		rep := experiments.ExecEval(cfg, *sf, names)
		fmt.Print(rep.Format())
		if !rep.AllMatch() {
			fmt.Fprintln(os.Stderr, "eabench: some optimized plans did not reproduce the canonical result")
			os.Exit(1)
		}
		return
	}

	selectedFig := func(n int) bool { return *fig == 0 && *table == 0 || *fig == n }
	selectedTable := func(n int) bool { return *fig == 0 && *table == 0 || *table == n }

	ran := false
	if selectedTable(1) {
		fmt.Print(experiments.Table1().Format())
		fmt.Println()
		ran = true
	}
	if selectedFig(15) {
		fmt.Print(experiments.Fig15(cfg).Format())
		fmt.Println()
		ran = true
	}
	if selectedFig(16) {
		fmt.Print(experiments.Fig16(cfg).Format())
		fmt.Println()
		ran = true
	}
	if selectedFig(17) {
		fmt.Print(experiments.Fig17(cfg).Format())
		fmt.Println()
		ran = true
	}
	if selectedFig(18) {
		fmt.Print(experiments.Fig18(cfg).Format())
		fmt.Println()
		ran = true
	}
	if selectedTable(2) {
		fmt.Print(experiments.FormatTable2(experiments.Table2()))
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "eabench: nothing selected (use -fig 15|16|17|18 or -table 1|2)\n")
		os.Exit(2)
	}
}
