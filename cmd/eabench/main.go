// Command eabench regenerates the tables and figures of the paper's
// evaluation section (Sec. 5).
//
// Usage:
//
//	eabench                          # everything, small default workload
//	eabench -fig 15 -queries 100     # one figure, bigger sample
//	eabench -table 2                 # the TPC-H table
//	eabench -queries 10000 -maxn 20  # the paper's full scale (slow!)
//	eabench -exec -sf 50             # execute plans on generated data
//	eabench -exec -query Q3 -sf 100  # one query, bigger instance
//	eabench -exec -sf 50 -workers 0  # parallel execution on all cores
//	eabench -exec -feedback -sf 1    # cardinality feedback loop report
//	eabench -exec -phys auto -sf 10  # sort-based physical layer competing
//	eabench -exec -runtime batch     # batch-at-a-time columnar execution
//	eabench -exec -query Q3 -trace trace.json   # Chrome trace-event JSON (Perfetto)
//	eabench -exec -json              # machine-readable JSON report
//	eabench -serve -sf 1             # service layer: concurrent sessions, shared engine
//	eabench -serve -sessions 8 -requests 100 -feedback -sf 1
//	eabench -serve -metrics-addr 127.0.0.1:9090   # scrapeable /metrics during the run
//	eabench -large                   # 100-relation shapes on the wide set representation
//	eabench -large -shape star100 -pair-budget 50000
//	eabench -exec -sf 50 -cpuprofile cpu.prof -memprofile mem.prof
//
// The flags mirror the feasibility limits reported in the paper: EA-All is
// only run up to -maxn-exhaustive relations and EA-Prune up to -maxn-prune.
//
// The -exec mode leaves the optimizer benchmarks behind and measures the
// execution runtime: each TPC-H query is optimized lazily (DPhyp) and
// eagerly (EA-Prune), both plans plus the canonical initial tree run on
// synthetic data scaled by -sf, results are verified to be identical, and
// the report shows wall time, throughput (intermediate + final rows per
// second) and the q-error between the C_out cost estimate and the
// measured intermediate-result volume. -workers applies to both the
// optimizer and the morsel-driven execution runtime; every worker count
// produces bit-identical plans and results, only the wall times change.
//
// -phys (requires -exec) selects the physical algebra: "hash" (default)
// is the build/probe hash layer, "sort" prefers sort-merge joins and
// sort-group aggregation, "auto" lets both layers compete — the DP table
// keeps plan classes per (relation set, collapse state, order) and the
// report's sorts column shows performed/eliminated sorts, the eliminated
// ones being reused interesting orders. Results are identical across all
// three modes.
//
// -runtime (requires -exec or -serve) selects the execution runtime:
// "row" (default) executes operators row at a time — the reference — and
// "batch" executes them batch at a time over columnar vectors with typed
// per-column kernels. Results are bit-identical between the two (float
// sums included); only the wall times change.
//
// The -serve mode (mutually exclusive with -exec) measures the embedded
// query-service layer: one engine — shared worker pool, plan cache, and
// with -feedback a global measured-cardinality overlay — serves -sessions
// concurrent sessions replaying the selected TPC-H shapes against
// resident data, -requests times per shape. The report shows per-shape
// throughput, p50/p99 latency, cache hits and the engine's shared-state
// counters; every response is verified against the canonical result, so
// the mode doubles as a concurrency soak.
//
// The -large mode (mutually exclusive with -exec and -serve) exercises
// the wide set representation: 100-relation chain, star and clique
// shapes are optimized with H1 and beam search — the generators that
// stay feasible at this scale — executed end-to-end on deterministic
// data and verified against the canonical evaluation. -shape selects
// shapes, -pair-budget caps the exact csg-cmp-pair enumeration (beyond
// it the deterministic greedy fallback builds the plan; stars and
// cliques always exceed any practical budget, chains never do). With
// the default budget the full report takes a few minutes, most of it
// the beam search on the 100-relation chain; -pair-budget 50000 brings
// it under a minute.
//
// -cpuprofile and -memprofile write pprof profiles covering whatever
// mode runs (any mode: the optimizer benchmarks, -exec, -serve, -large),
// so hot-path work is measurable without editing code: the CPU profile
// spans the whole run, the heap profile is captured after the workload
// finishes (post-GC, so it shows live retention, not transient garbage).
// An unwritable profile path is misuse and exits 2 before any work runs.
//
// -feedback (requires -exec) closes the cardinality feedback loop: each
// query is optimized, executed, the measured per-operator cardinalities
// are overlaid on the estimator, and the query is re-optimized — until
// the chosen plan is stable. The report compares the plan-level and
// worst-operator q-errors of the first (pure model) and final rounds,
// whether feedback changed the plan, and the measured C_out delta.
//
// -trace (requires -exec; composes with -feedback) records a structured
// trace of the run — per-query spans, optimizer phases with dp-level
// timing, executor operators with rows in/out and wall time — and writes
// it as Chrome trace-event JSON, openable in Perfetto (ui.perfetto.dev)
// or chrome://tracing. An unwritable path is misuse and exits 2 before
// any work runs.
//
// -json (requires -exec; composes with -feedback) replaces the aligned
// text report with machine-readable JSON on stdout — same rows, same
// quantities, enums rendered as strings.
//
// -metrics-addr (requires -serve) binds an HTTP listener for the
// duration of the serving phase: /metrics serves the engine's registry
// in the Prometheus text exposition (counters, gauges, latency
// histograms), /debug/vars the same registry through expvar. An address
// that cannot be bound is misuse and exits 2 before any work runs; the
// bound address (useful with :0) is printed to stderr.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"eagg/internal/core"
	"eagg/internal/engine"
	"eagg/internal/experiments"
	"eagg/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment injected, so the flag-hygiene rules
// (exit 2 on misuse, exit 1 on verification failures) are testable. The
// named return lets the deferred heap-profile write both see the final
// code and degrade it on write failure.
func run(args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("eabench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fig := fs.Int("fig", 0, "figure to reproduce (15, 16, 17, 18); 0 = all")
	table := fs.Int("table", 0, "table to reproduce (1, 2); 0 = all")
	queries := fs.Int("queries", 20, "random queries per relation count (paper: 10000)")
	seed := fs.Int64("seed", 42, "workload seed")
	maxN := fs.Int("maxn", 14, "largest relation count for the fast algorithms (paper: 20)")
	maxNPrune := fs.Int("maxn-prune", 10, "largest relation count for EA-Prune (paper: ~13)")
	maxNExh := fs.Int("maxn-exhaustive", 7, "largest relation count for EA-All (paper: ~8)")
	workers := fs.Int("workers", 1, "workers per query for the optimizer and (with -exec) morsel-driven plan execution (0 = GOMAXPROCS, 1 = the paper's sequential conditions); plans and results are identical for every value")
	execMode := fs.Bool("exec", false, "execute optimized vs canonical plans on generated data instead of running optimizer benchmarks")
	feedback := fs.Bool("feedback", false, "with -exec: close the cardinality feedback loop (optimize → execute → re-optimize with measured cardinalities until the plan is stable) and report q-error before/after; with -serve: enable the engine's shared feedback overlay")
	phys := fs.String("phys", "", "with -exec or -serve: physical algebra — hash (default), sort (sort-merge join/aggregation), or auto (both compete; the sorts column reports performed/eliminated)")
	runtimeName := fs.String("runtime", "", "with -exec or -serve: execution runtime — row (default, row-at-a-time reference) or batch (batch-at-a-time columnar vectors); results are bit-identical, only the wall times change")
	sf := fs.Float64("sf", 10, "-exec/-serve: scale factor multiplying the base synthetic instance sizes (must be > 0)")
	execQuery := fs.String("query", "", "-exec/-serve: comma-separated TPC-H queries (Ex, Q3, Q5, Q10); empty = all")
	serve := fs.Bool("serve", false, "run the service-layer throughput mode: one shared engine (plan cache, shared scheduler, optional -feedback overlay) serving -sessions concurrent sessions replaying the selected query shapes; reports qps and p50/p99 latency")
	large := fs.Bool("large", false, "run the large-query mode: optimize 100-relation shapes on the wide set representation (H1 and beam search; the exact generators are infeasible at this scale), execute the plans end-to-end and verify the results")
	shape := fs.String("shape", "", "with -large: comma-separated shapes ("+strings.Join(experiments.LargeShapeNames(), ", ")+"); empty = all")
	pairBudget := fs.Int("pair-budget", 0, "with -large: csg-cmp-pair enumeration budget (0 = the optimizer default; exceeding it switches to the deterministic greedy fallback)")
	sessions := fs.Int("sessions", 0, "with -serve: concurrent sessions driving the engine (default 4, must be > 0)")
	requests := fs.Int("requests", 0, "with -serve: requests served per query shape across all sessions (default 20, must be > 0)")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile (post-GC, live retention) to this file at exit")
	tracePath := fs.String("trace", "", "with -exec: write a Chrome trace-event JSON file of the run (optimizer phases, executor operators; open in Perfetto or chrome://tracing)")
	jsonOut := fs.Bool("json", false, "with -exec: print the report as machine-readable JSON instead of the aligned table (composes with -feedback)")
	metricsAddr := fs.String("metrics-addr", "", "with -serve: serve the engine's metrics on this address for the duration of the run — /metrics (Prometheus text) and /debug/vars (expvar); the bound address is printed to stderr")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0 // -h / --help is a request, not misuse
		}
		return 2
	}
	if *workers < 0 {
		fmt.Fprintf(stderr, "eabench: -workers must be ≥ 0 (0 = all cores), got %d\n", *workers)
		return 2
	}
	if *workers == 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	if *serve && *execMode {
		fmt.Fprintln(stderr, "eabench: -serve and -exec are mutually exclusive (pick the service-throughput or the single-plan execution report)")
		return 2
	}
	if *large && (*execMode || *serve) {
		fmt.Fprintln(stderr, "eabench: -large is mutually exclusive with -exec and -serve (it runs its own optimize-and-execute report)")
		return 2
	}
	if !*large && (*shape != "" || *pairBudget != 0) {
		fmt.Fprintln(stderr, "eabench: -shape and -pair-budget require -large (they select and bound the large-query shapes)")
		return 2
	}
	if *pairBudget < 0 {
		fmt.Fprintf(stderr, "eabench: -pair-budget must be ≥ 0, got %d\n", *pairBudget)
		return 2
	}
	if *large && *feedback {
		fmt.Fprintln(stderr, "eabench: -feedback requires -exec or -serve (the large-query mode executes each plan once)")
		return 2
	}
	if *feedback && !*execMode && !*serve {
		fmt.Fprintln(stderr, "eabench: -feedback requires -exec or -serve (feedback harvests cardinalities from plan execution)")
		return 2
	}
	if *phys != "" && !*execMode && !*serve {
		fmt.Fprintln(stderr, "eabench: -phys requires -exec or -serve (the physical algebra only matters when plans are executed)")
		return 2
	}
	physMode, err := core.ParsePhysMode(*phys)
	if err != nil {
		fmt.Fprintf(stderr, "eabench: -phys: %v\n", err)
		return 2
	}
	if *runtimeName != "" && !*execMode && !*serve && !*large {
		fmt.Fprintln(stderr, "eabench: -runtime requires -exec, -serve or -large (the execution runtime only matters when plans are executed)")
		return 2
	}
	execRuntime, err := engine.ParseRuntime(*runtimeName)
	if err != nil {
		fmt.Fprintf(stderr, "eabench: -runtime: %v\n", err)
		return 2
	}
	if (*execMode || *serve) && !(*sf > 0) { // rejects NaN too, unlike *sf <= 0
		fmt.Fprintf(stderr, "eabench: -sf must be > 0, got %g\n", *sf)
		return 2
	}
	if !*serve && (*sessions != 0 || *requests != 0) {
		fmt.Fprintln(stderr, "eabench: -sessions and -requests require -serve (they size the service-layer workload)")
		return 2
	}
	if *serve {
		if *sessions == 0 {
			*sessions = 4
		}
		if *requests == 0 {
			*requests = 20
		}
		if *sessions < 0 || *requests < 0 {
			fmt.Fprintf(stderr, "eabench: -sessions and -requests must be > 0, got %d/%d\n", *sessions, *requests)
			return 2
		}
	}
	if *tracePath != "" && !*execMode {
		fmt.Fprintln(stderr, "eabench: -trace requires -exec (the trace records one run's optimizer phases and executor operators)")
		return 2
	}
	if *jsonOut && !*execMode {
		fmt.Fprintln(stderr, "eabench: -json requires -exec (only the -exec and -exec -feedback reports have a JSON form)")
		return 2
	}
	if *metricsAddr != "" && !*serve {
		fmt.Fprintln(stderr, "eabench: -metrics-addr requires -serve (the metrics endpoint scrapes a running engine)")
		return 2
	}

	// Profile setup runs after every flag check above: a misused flag
	// combination exits 2 without creating profile files, and a profile
	// path that cannot be created (or a CPU profile that cannot start) is
	// itself misuse — exit 2 before any workload runs.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(stderr, "eabench: -cpuprofile: %v\n", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintf(stderr, "eabench: -cpuprofile: %v\n", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil && code == 0 {
				fmt.Fprintf(stderr, "eabench: -cpuprofile: %v\n", err)
				code = 1
			}
		}()
	}
	// Like the profiles: create the trace file and bind the metrics
	// listener up front, so a path or address that cannot work is misuse
	// (exit 2) before any workload runs.
	var traceFile *os.File
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(stderr, "eabench: -trace: %v\n", err)
			return 2
		}
		traceFile = f
	}
	var metricsLn net.Listener
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintf(stderr, "eabench: -metrics-addr: %v\n", err)
			return 2
		}
		metricsLn = ln
		fmt.Fprintf(stderr, "eabench: metrics on http://%s/metrics\n", ln.Addr())
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(stderr, "eabench: -memprofile: %v\n", err)
			return 2
		}
		defer func() {
			// Post-GC heap: live retention at exit, not transient garbage.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil && code == 0 {
				fmt.Fprintf(stderr, "eabench: -memprofile: %v\n", err)
				code = 1
			}
			if err := f.Close(); err != nil && code == 0 {
				fmt.Fprintf(stderr, "eabench: -memprofile: %v\n", err)
				code = 1
			}
		}()
	}

	var trace *obs.Trace
	if traceFile != nil {
		trace = obs.NewTrace()
	}
	// writeTrace flushes the collected spans as Chrome trace-event JSON;
	// it runs after the report so a verification failure still leaves the
	// trace on disk for diagnosis.
	writeTrace := func() int {
		if traceFile == nil {
			return 0
		}
		err := trace.WriteChrome(traceFile)
		if cerr := traceFile.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(stderr, "eabench: -trace: %v\n", err)
			return 1
		}
		return 0
	}

	cfg := experiments.Config{
		Queries:        *queries,
		Seed:           *seed,
		MaxN:           *maxN,
		MaxNPrune:      *maxNPrune,
		MaxNExhaustive: *maxNExh,
		Workers:        *workers,
		Phys:           physMode,
		Runtime:        execRuntime,
		Trace:          trace,
	}

	var names []string
	if *execQuery != "" {
		if *large {
			fmt.Fprintln(stderr, "eabench: -query selects TPC-H queries and requires -exec or -serve (use -shape with -large)")
			return 2
		}
		for _, n := range strings.Split(*execQuery, ",") {
			names = append(names, strings.TrimSpace(n))
		}
	}
	if *large {
		var shapes []string
		if *shape != "" {
			for _, s := range strings.Split(*shape, ",") {
				s = strings.TrimSpace(s)
				if _, ok := experiments.LargeShapes[s]; !ok {
					fmt.Fprintf(stderr, "eabench: unknown -shape %q (known: %s)\n", s, strings.Join(experiments.LargeShapeNames(), ", "))
					return 2
				}
				shapes = append(shapes, s)
			}
		}
		rep := experiments.LargeEval(cfg, shapes, *pairBudget)
		fmt.Fprint(stdout, rep.Format())
		if !rep.AllMatch() {
			fmt.Fprintln(stderr, "eabench: some large-query plans did not reproduce the canonical result")
			return 1
		}
		return 0
	}
	if *serve {
		rep := experiments.ServeEvalMetrics(cfg, *sf, names, *sessions, *requests, *feedback, metricsLn)
		fmt.Fprint(stdout, rep.Format())
		if !rep.AllMatch() {
			fmt.Fprintln(stderr, "eabench: some served responses did not reproduce the canonical result")
			return 1
		}
		return 0
	}

	if *execMode {
		if *feedback {
			rep := experiments.FeedbackEval(cfg, *sf, names)
			if *jsonOut {
				if err := rep.WriteJSON(stdout); err != nil {
					fmt.Fprintf(stderr, "eabench: -json: %v\n", err)
					return 1
				}
			} else {
				fmt.Fprint(stdout, rep.Format())
			}
			if c := writeTrace(); c != 0 {
				return c
			}
			if !rep.AllMatch() {
				fmt.Fprintln(stderr, "eabench: some re-optimized plans did not reproduce the canonical result")
				return 1
			}
			return 0
		}
		rep := experiments.ExecEval(cfg, *sf, names)
		if *jsonOut {
			if err := rep.WriteJSON(stdout); err != nil {
				fmt.Fprintf(stderr, "eabench: -json: %v\n", err)
				return 1
			}
		} else {
			fmt.Fprint(stdout, rep.Format())
		}
		if c := writeTrace(); c != 0 {
			return c
		}
		if !rep.AllMatch() {
			fmt.Fprintln(stderr, "eabench: some optimized plans did not reproduce the canonical result")
			return 1
		}
		return 0
	}

	selectedFig := func(n int) bool { return *fig == 0 && *table == 0 || *fig == n }
	selectedTable := func(n int) bool { return *fig == 0 && *table == 0 || *table == n }

	ran := false
	if selectedTable(1) {
		fmt.Fprint(stdout, experiments.Table1().Format())
		fmt.Fprintln(stdout)
		ran = true
	}
	if selectedFig(15) {
		fmt.Fprint(stdout, experiments.Fig15(cfg).Format())
		fmt.Fprintln(stdout)
		ran = true
	}
	if selectedFig(16) {
		fmt.Fprint(stdout, experiments.Fig16(cfg).Format())
		fmt.Fprintln(stdout)
		ran = true
	}
	if selectedFig(17) {
		fmt.Fprint(stdout, experiments.Fig17(cfg).Format())
		fmt.Fprintln(stdout)
		ran = true
	}
	if selectedFig(18) {
		fmt.Fprint(stdout, experiments.Fig18(cfg).Format())
		fmt.Fprintln(stdout)
		ran = true
	}
	if selectedTable(2) {
		fmt.Fprint(stdout, experiments.FormatTable2(experiments.Table2()))
		ran = true
	}
	if !ran {
		fmt.Fprintf(stderr, "eabench: nothing selected (use -fig 15|16|17|18 or -table 1|2)\n")
		return 2
	}
	return 0
}
