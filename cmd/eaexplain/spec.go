package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"eagg/internal/aggfn"
	"eagg/internal/query"
)

// The JSON query specification:
//
//	{
//	  "relations": [
//	    {"name": "fact", "card": 1000000,
//	     "attrs": [{"name": "fact.fk", "distinct": 100},
//	               {"name": "fact.g",  "distinct": 10},
//	               {"name": "fact.v",  "distinct": 500000}]},
//	    {"name": "dim", "card": 100,
//	     "attrs": [{"name": "dim.pk", "distinct": 100}],
//	     "keys": [["dim.pk"]]}
//	  ],
//	  "tree": {"op": "join",
//	           "left":  {"scan": "fact"},
//	           "right": {"scan": "dim"},
//	           "pred":  {"left": ["fact.fk"], "right": ["dim.pk"],
//	                     "selectivity": 0.01}},
//	  "groupBy": ["fact.g"],
//	  "aggregates": [{"out": "cnt", "fn": "count(*)"},
//	                 {"out": "total", "fn": "sum", "arg": "fact.v"}]
//	}
//
// Operators: join, leftouter, fullouter, semijoin, antijoin.
type specFile struct {
	Relations []specRel `json:"relations"`
	Tree      *specNode `json:"tree"`
	GroupBy   []string  `json:"groupBy"`
	Aggs      []specAgg `json:"aggregates"`
}

type specRel struct {
	Name  string     `json:"name"`
	Card  float64    `json:"card"`
	Attrs []specAttr `json:"attrs"`
	Keys  [][]string `json:"keys"`
}

type specAttr struct {
	Name     string  `json:"name"`
	Distinct float64 `json:"distinct"`
}

type specNode struct {
	Scan  string    `json:"scan"`
	Op    string    `json:"op"`
	Left  *specNode `json:"left"`
	Right *specNode `json:"right"`
	Pred  *specPred `json:"pred"`
}

type specPred struct {
	Left        []string `json:"left"`
	Right       []string `json:"right"`
	Selectivity float64  `json:"selectivity"`
}

type specAgg struct {
	Out string `json:"out"`
	Fn  string `json:"fn"`
	Arg string `json:"arg"`
}

var opByName = map[string]query.OpKind{
	"join":      query.KindJoin,
	"leftouter": query.KindLeftOuter,
	"fullouter": query.KindFullOuter,
	"semijoin":  query.KindSemiJoin,
	"antijoin":  query.KindAntiJoin,
}

var fnByName = map[string]aggfn.Kind{
	"count(*)": aggfn.CountStar,
	"count":    aggfn.Count,
	"sum":      aggfn.Sum,
	"min":      aggfn.Min,
	"max":      aggfn.Max,
	"avg":      aggfn.Avg,
}

// loadSpec reads and converts a JSON specification into a query.
func loadSpec(path string) (*query.Query, error) {
	var raw []byte
	var err error
	if path == "-" {
		raw, err = io.ReadAll(os.Stdin)
	} else {
		raw, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	var sf specFile
	if err := json.Unmarshal(raw, &sf); err != nil {
		return nil, fmt.Errorf("parsing spec: %w", err)
	}

	q := query.New()
	relByName := map[string]int{}
	for _, r := range sf.Relations {
		id := q.AddRelation(r.Name, r.Card)
		relByName[r.Name] = id
		for _, a := range r.Attrs {
			q.AddAttr(id, a.Name, a.Distinct)
		}
		for _, k := range r.Keys {
			ids := make([]int, len(k))
			for i, name := range k {
				ids[i] = q.AttrID(name)
			}
			q.AddKey(id, ids...)
		}
	}

	var build func(n *specNode) (*query.OpNode, error)
	build = func(n *specNode) (*query.OpNode, error) {
		if n == nil {
			return nil, fmt.Errorf("missing tree node")
		}
		if n.Scan != "" {
			id, ok := relByName[n.Scan]
			if !ok {
				return nil, fmt.Errorf("scan of unknown relation %q", n.Scan)
			}
			return &query.OpNode{Kind: query.KindScan, Rel: id}, nil
		}
		kind, ok := opByName[n.Op]
		if !ok {
			return nil, fmt.Errorf("unknown operator %q", n.Op)
		}
		if n.Pred == nil || len(n.Pred.Left) == 0 || len(n.Pred.Left) != len(n.Pred.Right) {
			return nil, fmt.Errorf("operator %q needs a predicate with paired attribute lists", n.Op)
		}
		l, err := build(n.Left)
		if err != nil {
			return nil, err
		}
		r, err := build(n.Right)
		if err != nil {
			return nil, err
		}
		left := make([]int, len(n.Pred.Left))
		right := make([]int, len(n.Pred.Right))
		for i := range n.Pred.Left {
			left[i] = q.AttrID(n.Pred.Left[i])
			right[i] = q.AttrID(n.Pred.Right[i])
		}
		return &query.OpNode{
			Kind: kind, Left: l, Right: r,
			Pred: &query.Predicate{Left: left, Right: right, Selectivity: n.Pred.Selectivity},
		}, nil
	}
	root, err := build(sf.Tree)
	if err != nil {
		return nil, err
	}
	q.Root = root

	if len(sf.GroupBy) > 0 || len(sf.Aggs) > 0 {
		var g []int
		for _, name := range sf.GroupBy {
			g = append(g, q.AttrID(name))
		}
		var f aggfn.Vector
		for _, a := range sf.Aggs {
			kind, ok := fnByName[a.Fn]
			if !ok {
				return nil, fmt.Errorf("unknown aggregate %q", a.Fn)
			}
			f = append(f, aggfn.Agg{Out: a.Out, Kind: kind, Arg: a.Arg})
		}
		q.SetGrouping(g, f)
	}
	return q, nil
}
