package main

import (
	"os"
	"path/filepath"
	"testing"

	"eagg/internal/core"
	"eagg/internal/query"
)

func TestLoadSpecStar(t *testing.T) {
	q, err := loadSpec(filepath.Join("testdata", "star.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(q.Relations) != 2 || q.Root.Kind != query.KindLeftOuter {
		t.Fatalf("unexpected query shape: %d relations, root %v", len(q.Relations), q.Root.Kind)
	}
	if !q.HasGrouping || len(q.Aggregates) != 3 {
		t.Fatal("grouping not loaded")
	}
	// The spec represents an eager-aggregation win; the optimizer must
	// find it (grouping below the left outerjoin — Eqv. 11 territory).
	lazy, err := core.Optimize(q, core.Options{Algorithm: core.AlgDPhyp})
	if err != nil {
		t.Fatal(err)
	}
	eager, err := core.Optimize(q, core.Options{Algorithm: core.AlgEAPrune})
	if err != nil {
		t.Fatal(err)
	}
	if eager.Plan.Cost >= lazy.Plan.Cost {
		t.Errorf("eager %.6g should beat lazy %.6g", eager.Plan.Cost, lazy.Plan.Cost)
	}
	if eager.Plan.CountGroupings() == 0 {
		t.Errorf("expected a pushed grouping:\n%v", eager.Plan.StringWithQuery(q))
	}
}

func TestLoadSpecErrors(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct {
		name, content string
	}{
		{"badjson.json", `{"relations": [`},
		{"unknownop.json", `{"relations":[{"name":"a","card":1,"attrs":[{"name":"x","distinct":1}]},
			{"name":"b","card":1,"attrs":[{"name":"y","distinct":1}]}],
			"tree":{"op":"wat","left":{"scan":"a"},"right":{"scan":"b"},
			"pred":{"left":["x"],"right":["y"],"selectivity":0.5}}}`},
		{"unknownrel.json", `{"relations":[],"tree":{"scan":"ghost"}}`},
		{"nopred.json", `{"relations":[{"name":"a","card":1,"attrs":[{"name":"x","distinct":1}]},
			{"name":"b","card":1,"attrs":[{"name":"y","distinct":1}]}],
			"tree":{"op":"join","left":{"scan":"a"},"right":{"scan":"b"}}}`},
		{"badagg.json", `{"relations":[{"name":"a","card":1,"attrs":[{"name":"x","distinct":1}]},
			{"name":"b","card":1,"attrs":[{"name":"y","distinct":1}]}],
			"tree":{"op":"join","left":{"scan":"a"},"right":{"scan":"b"},
			"pred":{"left":["x"],"right":["y"],"selectivity":0.5}},
			"aggregates":[{"out":"z","fn":"median","arg":"x"}]}`},
	}
	for _, c := range cases {
		p := write(c.name, c.content)
		if _, err := loadSpec(p); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	if _, err := loadSpec(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file must error")
	}
}
