// Command eaexplain optimizes a query with the plan generators of the
// paper and prints the resulting operator trees with their estimated
// cardinalities and C_out costs.
//
// Usage:
//
//	eaexplain -demo ex            # the paper's motivating query
//	eaexplain -demo q3|q5|q10     # the TPC-H evaluation queries
//	eaexplain -spec query.json    # a JSON query specification
//	eaexplain -spec - < q.json    # spec from stdin
//	eaexplain -demo chain100      # 100-relation chain on the wide set representation
//	eaexplain -demo star100 -pair-budget 50000
//
// The chain100/star100/clique100 demos optimize past the 63-relation
// fast path; they run only the generators feasible at that scale (H1
// and beam search). -pair-budget caps the exact csg-cmp-pair
// enumeration; beyond the cap the deterministic greedy fallback builds
// the plan (star and clique shapes always exceed any practical budget).
// Expect minutes at the default budget — most of it the beam search on
// chain100 — and under a minute with -pair-budget 50000.
//
// The JSON specification format is documented in spec.go (see also
// examples/quickstart for the programmatic API).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"eagg/internal/core"
	"eagg/internal/query"
	"eagg/internal/randquery"
	"eagg/internal/tpch"
)

func main() {
	demo := flag.String("demo", "", "built-in query: ex, q3, q5, q10, chain100, star100, clique100")
	spec := flag.String("spec", "", "JSON query specification file ('-' for stdin)")
	factor := flag.Float64("f", 1.03, "H2 tolerance factor")
	workers := flag.Int("workers", 1, "optimizer workers (0 = GOMAXPROCS); the plans are identical for every value")
	levels := flag.Bool("levels", false, "print per-level DP timing (pairs, subsets, duration)")
	pairBudget := flag.Int("pair-budget", 0, "with a chain100/star100/clique100 demo: csg-cmp-pair enumeration budget (0 = the optimizer default; exceeding it switches to the deterministic greedy fallback)")
	flag.Parse()

	if *pairBudget < 0 {
		fmt.Fprintf(os.Stderr, "eaexplain: -pair-budget must be ≥ 0, got %d\n", *pairBudget)
		os.Exit(2)
	}

	largeDemos := map[string]func() *query.Query{
		"chain100": func() *query.Query { return randquery.Chain(100) },
		"star100":  func() *query.Query { return randquery.Star(100) },
		"clique100": func() *query.Query {
			return randquery.Clique(100)
		},
	}

	var q *query.Query
	isLarge := false
	switch {
	case *demo != "":
		if build, ok := largeDemos[strings.ToLower(*demo)]; ok {
			q, isLarge = build(), true
			break
		}
		qs := tpch.Queries()
		var ok bool
		q, ok = map[string]*query.Query{
			"ex": qs["Ex"], "q3": qs["Q3"], "q5": qs["Q5"], "q10": qs["Q10"],
		}[strings.ToLower(*demo)]
		if !ok {
			fmt.Fprintf(os.Stderr, "eaexplain: unknown demo %q (ex, q3, q5, q10, chain100, star100, clique100)\n", *demo)
			os.Exit(2)
		}
	case *spec != "":
		var err error
		q, err = loadSpec(*spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "eaexplain: %v\n", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "eaexplain: need -demo or -spec")
		flag.Usage()
		os.Exit(2)
	}

	if !isLarge && *pairBudget != 0 {
		fmt.Fprintln(os.Stderr, "eaexplain: -pair-budget requires a chain100/star100/clique100 demo (small queries are always enumerated exactly)")
		os.Exit(2)
	}

	if err := q.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "eaexplain: invalid query: %v\n", err)
		os.Exit(1)
	}

	type run struct {
		name  string
		alg   core.Algorithm
		f     float64
		width int
	}
	runs := []run{
		{"DPhyp (no eager aggregation)", core.AlgDPhyp, 0, 0},
		{"EA-Prune (optimal)", core.AlgEAPrune, 0, 0},
		{"EA-All (optimal, exhaustive)", core.AlgEAAll, 0, 0},
		{"H1", core.AlgH1, 0, 0},
		{fmt.Sprintf("H2 (F=%.2f)", *factor), core.AlgH2, *factor, 0},
	}
	if isLarge {
		// Past ~13 relations the exact generators are infeasible; the
		// 100-relation demos run the two that scale. The first run is the
		// cost baseline, so the "× DPhyp" column becomes "× H1" here.
		runs = []run{
			{"H1", core.AlgH1, 0, 0},
			{"Beam (width 4)", core.AlgBeam, 0, 4},
		}
	}
	var base float64
	for i, r := range runs {
		res, err := core.Optimize(q, core.Options{Algorithm: r.alg, F: r.f, BeamWidth: r.width, Workers: *workers, PairBudget: *pairBudget})
		if err != nil {
			fmt.Fprintf(os.Stderr, "eaexplain: %s: %v\n", r.name, err)
			os.Exit(1)
		}
		if i == 0 {
			base = res.Plan.Cost
		}
		baseName := "DPhyp"
		if isLarge {
			baseName = "H1"
		}
		fmt.Printf("=== %s ===\n", r.name)
		fmt.Printf("cost %.6g (%.4g× %s), %d csg-cmp-pairs, %d trees built\n",
			res.Plan.Cost, res.Plan.Cost/base, baseName, res.Stats.CsgCmpPairs, res.Stats.PlansBuilt)
		if res.Stats.PairBudgetExceeded {
			fmt.Printf("pair budget exceeded: plan built by the deterministic greedy fallback\n")
		}
		if res.Stats.Workers > 1 {
			fmt.Printf("workers %d, %d levels, shard contention %d\n",
				res.Stats.Workers, len(res.Stats.Levels), res.Stats.ShardContention)
		}
		if *levels {
			for _, l := range res.Stats.Levels {
				fmt.Printf("  level %2d: %6d pairs over %6d subsets in %v\n",
					l.Level, l.Pairs, l.Subsets, l.Duration)
			}
		}
		fmt.Print(res.Plan.StringWithQuery(q))
		fmt.Println()
	}
}
