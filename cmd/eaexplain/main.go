// Command eaexplain optimizes a query with the plan generators of the
// paper and prints the resulting operator trees with their estimated
// cardinalities and C_out costs.
//
// Usage:
//
//	eaexplain -demo ex            # the paper's motivating query
//	eaexplain -demo q3|q5|q10     # the TPC-H evaluation queries
//	eaexplain -demo q5 -analyze   # EXPLAIN ANALYZE: execute on synthetic
//	                              # data, print est-vs-actual per operator
//	                              # before and after cardinality feedback
//	eaexplain -demo q5 -analyze -sf 2   # ... at scale factor 2
//	eaexplain -spec query.json    # a JSON query specification
//	eaexplain -spec - < q.json    # spec from stdin
//	eaexplain -demo chain100      # 100-relation chain on the wide set representation
//	eaexplain -demo star100 -pair-budget 50000
//
// The chain100/star100/clique100 demos optimize past the 63-relation
// fast path; they run only the generators feasible at that scale (H1
// and beam search). -pair-budget caps the exact csg-cmp-pair
// enumeration; beyond the cap the deterministic greedy fallback builds
// the plan (star and clique shapes always exceed any practical budget).
// Expect minutes at the default budget — most of it the beam search on
// chain100 — and under a minute with -pair-budget 50000.
//
// -analyze needs data to execute on, so it is limited to the TPC-H
// demos (ex, q3, q5, q10), whose synthetic instances the experiment
// harness generates deterministically.
//
// The JSON specification format is documented in spec.go (see also
// examples/quickstart for the programmatic API).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"eagg/internal/core"
	"eagg/internal/experiments"
	"eagg/internal/query"
	"eagg/internal/randquery"
	"eagg/internal/tpch"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its dependencies injected, so the misuse/exit-code
// contract is testable: 0 success, 1 runtime failure, 2 flag misuse.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("eaexplain", flag.ContinueOnError)
	fs.SetOutput(stderr)
	demo := fs.String("demo", "", "built-in query: ex, q3, q5, q10, chain100, star100, clique100")
	spec := fs.String("spec", "", "JSON query specification file ('-' for stdin)")
	factor := fs.Float64("f", 1.03, "H2 tolerance factor")
	workers := fs.Int("workers", 1, "optimizer workers (0 = GOMAXPROCS); the plans are identical for every value")
	levels := fs.Bool("levels", false, "print per-level DP timing (pairs, subsets, duration)")
	pairBudget := fs.Int("pair-budget", 0, "with a chain100/star100/clique100 demo: csg-cmp-pair enumeration budget (0 = the optimizer default; exceeding it switches to the deterministic greedy fallback)")
	analyze := fs.Bool("analyze", false, "EXPLAIN ANALYZE: execute the lazy and eager plans on synthetic data and print per-operator est-vs-actual cardinality and time, before and after cardinality feedback (TPC-H demos only)")
	sf := fs.Float64("sf", 1, "with -analyze: synthetic data scale factor")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *pairBudget < 0 {
		fmt.Fprintf(stderr, "eaexplain: -pair-budget must be ≥ 0, got %d\n", *pairBudget)
		return 2
	}
	if !*analyze && *sf != 1 {
		fmt.Fprintln(stderr, "eaexplain: -sf requires -analyze")
		return 2
	}
	if *analyze && *sf <= 0 {
		fmt.Fprintf(stderr, "eaexplain: -sf must be > 0, got %g\n", *sf)
		return 2
	}
	if *analyze && *spec != "" {
		fmt.Fprintln(stderr, "eaexplain: -analyze needs a TPC-H demo (ex, q3, q5, q10) — a -spec query has no data to execute on")
		return 2
	}

	largeDemos := map[string]func() *query.Query{
		"chain100": func() *query.Query { return randquery.Chain(100) },
		"star100":  func() *query.Query { return randquery.Star(100) },
		"clique100": func() *query.Query {
			return randquery.Clique(100)
		},
	}
	// The TPC-H demo names as the experiment harness knows them.
	tpchDemos := map[string]string{"ex": "Ex", "q3": "Q3", "q5": "Q5", "q10": "Q10"}

	var q *query.Query
	isLarge := false
	switch {
	case *demo != "":
		if build, ok := largeDemos[strings.ToLower(*demo)]; ok {
			q, isLarge = build(), true
			break
		}
		qs := tpch.Queries()
		name, ok := tpchDemos[strings.ToLower(*demo)]
		if !ok {
			fmt.Fprintf(stderr, "eaexplain: unknown demo %q (ex, q3, q5, q10, chain100, star100, clique100)\n", *demo)
			return 2
		}
		q = qs[name]
	case *spec != "":
		var err error
		q, err = loadSpec(*spec)
		if err != nil {
			fmt.Fprintf(stderr, "eaexplain: %v\n", err)
			return 1
		}
	default:
		fmt.Fprintln(stderr, "eaexplain: need -demo or -spec")
		fs.Usage()
		return 2
	}

	if isLarge && *analyze {
		fmt.Fprintln(stderr, "eaexplain: -analyze needs a TPC-H demo (ex, q3, q5, q10) — the 100-relation shapes have no executable data")
		return 2
	}
	if !isLarge && *pairBudget != 0 {
		fmt.Fprintln(stderr, "eaexplain: -pair-budget requires a chain100/star100/clique100 demo (small queries are always enumerated exactly)")
		return 2
	}

	if err := q.Validate(); err != nil {
		fmt.Fprintf(stderr, "eaexplain: invalid query: %v\n", err)
		return 1
	}

	if *analyze {
		rep := experiments.AnalyzeEval(experiments.Config{Workers: *workers}, *sf, tpchDemos[strings.ToLower(*demo)])
		fmt.Fprint(stdout, rep.Format())
		for _, c := range rep.Cells {
			if !c.Match {
				return 1
			}
		}
		return 0
	}

	type run struct {
		name  string
		alg   core.Algorithm
		f     float64
		width int
	}
	runs := []run{
		{"DPhyp (no eager aggregation)", core.AlgDPhyp, 0, 0},
		{"EA-Prune (optimal)", core.AlgEAPrune, 0, 0},
		{"EA-All (optimal, exhaustive)", core.AlgEAAll, 0, 0},
		{"H1", core.AlgH1, 0, 0},
		{fmt.Sprintf("H2 (F=%.2f)", *factor), core.AlgH2, *factor, 0},
	}
	if isLarge {
		// Past ~13 relations the exact generators are infeasible; the
		// 100-relation demos run the two that scale. The first run is the
		// cost baseline, so the "× DPhyp" column becomes "× H1" here.
		runs = []run{
			{"H1", core.AlgH1, 0, 0},
			{"Beam (width 4)", core.AlgBeam, 0, 4},
		}
	}
	var base float64
	for i, r := range runs {
		res, err := core.Optimize(q, core.Options{Algorithm: r.alg, F: r.f, BeamWidth: r.width, Workers: *workers, PairBudget: *pairBudget})
		if err != nil {
			fmt.Fprintf(stderr, "eaexplain: %s: %v\n", r.name, err)
			return 1
		}
		if i == 0 {
			base = res.Plan.Cost
		}
		baseName := "DPhyp"
		if isLarge {
			baseName = "H1"
		}
		fmt.Fprintf(stdout, "=== %s ===\n", r.name)
		fmt.Fprintf(stdout, "cost %.6g (%.4g× %s), %d csg-cmp-pairs, %d trees built\n",
			res.Plan.Cost, res.Plan.Cost/base, baseName, res.Stats.CsgCmpPairs, res.Stats.PlansBuilt)
		if res.Stats.PairBudgetExceeded {
			fmt.Fprintf(stdout, "pair budget exceeded: plan built by the deterministic greedy fallback\n")
		}
		if res.Stats.Workers > 1 {
			fmt.Fprintf(stdout, "workers %d, %d levels, shard contention %d\n",
				res.Stats.Workers, len(res.Stats.Levels), res.Stats.ShardContention)
		}
		if *levels {
			for _, l := range res.Stats.Levels {
				fmt.Fprintf(stdout, "  level %2d: %6d pairs over %6d subsets in %v\n",
					l.Level, l.Pairs, l.Subsets, l.Duration)
			}
		}
		fmt.Fprint(stdout, res.Plan.StringWithQuery(q))
		fmt.Fprintln(stdout)
	}
	return 0
}
