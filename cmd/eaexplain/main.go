// Command eaexplain optimizes a query with the plan generators of the
// paper and prints the resulting operator trees with their estimated
// cardinalities and C_out costs.
//
// Usage:
//
//	eaexplain -demo ex            # the paper's motivating query
//	eaexplain -demo q3|q5|q10     # the TPC-H evaluation queries
//	eaexplain -spec query.json    # a JSON query specification
//	eaexplain -spec - < q.json    # spec from stdin
//
// The JSON specification format is documented in spec.go (see also
// examples/quickstart for the programmatic API).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"eagg/internal/core"
	"eagg/internal/query"
	"eagg/internal/tpch"
)

func main() {
	demo := flag.String("demo", "", "built-in query: ex, q3, q5, q10")
	spec := flag.String("spec", "", "JSON query specification file ('-' for stdin)")
	factor := flag.Float64("f", 1.03, "H2 tolerance factor")
	workers := flag.Int("workers", 1, "optimizer workers (0 = GOMAXPROCS); the plans are identical for every value")
	levels := flag.Bool("levels", false, "print per-level DP timing (pairs, subsets, duration)")
	flag.Parse()

	var q *query.Query
	switch {
	case *demo != "":
		qs := tpch.Queries()
		var ok bool
		q, ok = map[string]*query.Query{
			"ex": qs["Ex"], "q3": qs["Q3"], "q5": qs["Q5"], "q10": qs["Q10"],
		}[strings.ToLower(*demo)]
		if !ok {
			fmt.Fprintf(os.Stderr, "eaexplain: unknown demo %q (ex, q3, q5, q10)\n", *demo)
			os.Exit(2)
		}
	case *spec != "":
		var err error
		q, err = loadSpec(*spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "eaexplain: %v\n", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "eaexplain: need -demo or -spec")
		flag.Usage()
		os.Exit(2)
	}

	if err := q.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "eaexplain: invalid query: %v\n", err)
		os.Exit(1)
	}

	type run struct {
		name string
		alg  core.Algorithm
		f    float64
	}
	runs := []run{
		{"DPhyp (no eager aggregation)", core.AlgDPhyp, 0},
		{"EA-Prune (optimal)", core.AlgEAPrune, 0},
		{"EA-All (optimal, exhaustive)", core.AlgEAAll, 0},
		{"H1", core.AlgH1, 0},
		{fmt.Sprintf("H2 (F=%.2f)", *factor), core.AlgH2, *factor},
	}
	var base float64
	for i, r := range runs {
		res, err := core.Optimize(q, core.Options{Algorithm: r.alg, F: r.f, Workers: *workers})
		if err != nil {
			fmt.Fprintf(os.Stderr, "eaexplain: %s: %v\n", r.name, err)
			os.Exit(1)
		}
		if i == 0 {
			base = res.Plan.Cost
		}
		fmt.Printf("=== %s ===\n", r.name)
		fmt.Printf("cost %.6g (%.4g× DPhyp), %d csg-cmp-pairs, %d trees built\n",
			res.Plan.Cost, res.Plan.Cost/base, res.Stats.CsgCmpPairs, res.Stats.PlansBuilt)
		if res.Stats.Workers > 1 {
			fmt.Printf("workers %d, %d levels, shard contention %d\n",
				res.Stats.Workers, len(res.Stats.Levels), res.Stats.ShardContention)
		}
		if *levels {
			for _, l := range res.Stats.Levels {
				fmt.Printf("  level %2d: %6d pairs over %6d subsets in %v\n",
					l.Level, l.Pairs, l.Subsets, l.Duration)
			}
		}
		fmt.Print(res.Plan.StringWithQuery(q))
		fmt.Println()
	}
}
