package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestExplainFlagHygiene pins eaexplain's misuse conventions: flag
// combinations that cannot mean anything exit 2 with a pointed message,
// matching eabench's convention.
func TestExplainFlagHygiene(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"no selection", []string{}, "need -demo or -spec"},
		{"unknown demo", []string{"-demo", "q99"}, "unknown demo"},
		{"negative pair budget", []string{"-demo", "q3", "-pair-budget", "-1"}, "-pair-budget must be"},
		{"pair budget on small demo", []string{"-demo", "q3", "-pair-budget", "1000"}, "-pair-budget requires"},
		{"sf without analyze", []string{"-demo", "q3", "-sf", "2"}, "-sf requires -analyze"},
		{"bad sf", []string{"-demo", "q3", "-analyze", "-sf", "0"}, "-sf must be > 0"},
		{"analyze with spec", []string{"-spec", "testdata/star.json", "-analyze"}, "-analyze needs a TPC-H demo"},
		{"analyze on large demo", []string{"-demo", "chain100", "-analyze"}, "-analyze needs a TPC-H demo"},
	}
	for _, tc := range cases {
		var out, errOut bytes.Buffer
		if code := run(tc.args, &out, &errOut); code != 2 {
			t.Errorf("%s: want exit 2, got %d (stderr: %s)", tc.name, code, errOut.String())
		}
		if !strings.Contains(errOut.String(), tc.wantErr) {
			t.Errorf("%s: stderr %q does not mention %q", tc.name, errOut.String(), tc.wantErr)
		}
	}
}

// TestExplainDemo smokes the plain explain path through run(): all five
// generators print their trees, exit 0.
func TestExplainDemo(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-demo", "ex"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, errOut.String())
	}
	for _, want := range []string{"DPhyp (no eager aggregation)", "EA-Prune (optimal)", "csg-cmp-pairs"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q\n%s", want, out.String())
		}
	}
}

// TestExplainAnalyzeQ5 is the acceptance path: one command prints the
// plan trees of both generators with per-operator est-vs-actual rows and
// time, before and after cardinality feedback, at the default sf 1.
func TestExplainAnalyzeQ5(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-demo", "q5", "-analyze"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, errOut.String())
	}
	text := out.String()
	for _, want := range []string{
		"EXPLAIN ANALYZE: Q5",
		"=== lazy/DPhyp ===",
		"=== eager/EA-Prune ===",
		"before feedback (round 1",
		"est=", "act=", "q=", "time=", "rows=",
		"match ok",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("analyze output missing %q\n%s", want, text)
		}
	}
	// The feedback half: either a plan change produced an after-tree, or
	// the report explicitly says feedback confirmed the plan.
	if !strings.Contains(text, "after feedback (round") && !strings.Contains(text, "feedback confirmed the plan") {
		t.Errorf("analyze output missing the after-feedback section\n%s", text)
	}
}
