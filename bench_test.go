// Benchmarks regenerating the paper's evaluation (Sec. 5), one family per
// table and figure. Run them with
//
//	go test -bench=. -benchmem
//
// Figures 15/17 are plan-quality experiments: their benchmarks measure the
// optimizers and additionally report the average relative plan cost via
// the "relcost" metric (the y-axis of the figure). Figures 16/18 are
// runtime experiments: the benchmark time itself is the y-axis. The
// full series (all relation counts, printable rows) come from cmd/eabench.
package eagg_test

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"eagg/internal/aggfn"
	"eagg/internal/bitset"
	"eagg/internal/conflict"
	"eagg/internal/core"
	"eagg/internal/engine"
	"eagg/internal/experiments"
	"eagg/internal/obs"
	"eagg/internal/query"
	"eagg/internal/randquery"
	"eagg/internal/service"
	"eagg/internal/tpch"
)

// workload generates a fixed batch of queries for a relation count.
func workload(n, count int) []*query.Query {
	rng := rand.New(rand.NewSource(int64(1000 + n)))
	out := make([]*query.Query, count)
	for i := range out {
		out[i] = randquery.Generate(rng, randquery.Params{Relations: n})
	}
	return out
}

// optimizeAll pins Workers: 1: the figure benchmarks reproduce the
// paper's single-threaded measurement conditions; parallel scaling is
// measured separately by BenchmarkOptimizeParallel.
func optimizeAll(b *testing.B, qs []*query.Query, alg core.Algorithm, f float64) float64 {
	b.Helper()
	var lastCost float64
	for _, q := range qs {
		res, err := core.Optimize(q, core.Options{Algorithm: alg, F: f, Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		lastCost = res.Plan.Cost
	}
	return lastCost
}

// BenchmarkFig15 measures the gain of eager aggregation: per relation
// count, it optimizes the workload with DPhyp and EA-Prune and reports the
// average cost ratio (the paper's Fig. 15 y-axis, growing to ≈18× at 13
// relations).
func BenchmarkFig15(b *testing.B) {
	for _, n := range []int{4, 6, 8, 10} {
		b.Run(fmt.Sprintf("relations=%d", n), func(b *testing.B) {
			qs := workload(n, 8)
			ratioSum, samples := 0.0, 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, q := range qs {
					d, err := core.Optimize(q, core.Options{Algorithm: core.AlgDPhyp, Workers: 1})
					if err != nil {
						b.Fatal(err)
					}
					p, err := core.Optimize(q, core.Options{Algorithm: core.AlgEAPrune, Workers: 1})
					if err != nil {
						b.Fatal(err)
					}
					ratioSum += d.Plan.Cost / p.Plan.Cost
					samples++
				}
			}
			b.ReportMetric(ratioSum/float64(samples), "relcost")
		})
	}
}

// BenchmarkFig16 measures optimization runtime per algorithm and relation
// count (the paper's Fig. 16): EA-All explodes first, EA-Prune later,
// DPhyp and H1 stay fast with H1 a small constant factor above DPhyp.
func BenchmarkFig16(b *testing.B) {
	type cfgT struct {
		name string
		alg  core.Algorithm
		maxN int
	}
	cfgs := []cfgT{
		{"DPhyp", core.AlgDPhyp, 14},
		{"H1", core.AlgH1, 14},
		{"EA-Prune", core.AlgEAPrune, 10},
		{"EA-All", core.AlgEAAll, 7},
	}
	for _, cfg := range cfgs {
		for _, n := range []int{4, 7, 10, 14} {
			if n > cfg.maxN {
				continue
			}
			b.Run(fmt.Sprintf("%s/relations=%d", cfg.name, n), func(b *testing.B) {
				qs := workload(n, 4)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					optimizeAll(b, qs, cfg.alg, 0)
				}
			})
		}
	}
}

// BenchmarkFig17 measures the heuristics' plan quality relative to the
// EA-Prune optimum (the paper's Fig. 17: H2 with F=1.03 lands within a few
// percent).
func BenchmarkFig17(b *testing.B) {
	type hT struct {
		name string
		alg  core.Algorithm
		f    float64
	}
	hs := []hT{
		{"H1", core.AlgH1, 0},
		{"H2_F1.01", core.AlgH2, 1.01},
		{"H2_F1.03", core.AlgH2, 1.03},
		{"H2_F1.05", core.AlgH2, 1.05},
		{"H2_F1.10", core.AlgH2, 1.10},
	}
	n := 8
	qs := workload(n, 8)
	opt := make([]float64, len(qs))
	for i, q := range qs {
		res, err := core.Optimize(q, core.Options{Algorithm: core.AlgEAPrune, Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		opt[i] = res.Plan.Cost
	}
	for _, h := range hs {
		b.Run(fmt.Sprintf("%s/relations=%d", h.name, n), func(b *testing.B) {
			ratioSum, samples := 0.0, 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for qi, q := range qs {
					res, err := core.Optimize(q, core.Options{Algorithm: h.alg, F: h.f, Workers: 1})
					if err != nil {
						b.Fatal(err)
					}
					ratioSum += res.Plan.Cost / opt[qi]
					samples++
				}
			}
			b.ReportMetric(ratioSum/float64(samples), "relcost")
		})
	}
}

// BenchmarkFig18 measures H2 relative to H1 (the paper's Fig. 18: nearly
// identical, H2 often slightly faster). Compare the two sub-benchmarks'
// ns/op.
func BenchmarkFig18(b *testing.B) {
	for _, n := range []int{6, 10, 14} {
		qs := workload(n, 4)
		b.Run(fmt.Sprintf("H1/relations=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				optimizeAll(b, qs, core.AlgH1, 0)
			}
		})
		b.Run(fmt.Sprintf("H2/relations=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				optimizeAll(b, qs, core.AlgH2, 1.03)
			}
		})
	}
}

// BenchmarkTable1 executes the Fig. 11 example trees (the C_out
// walk-through behind Table 1).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table1()
		if r.CoutGroupLazy != 10 || r.CoutGroupEager != 9 {
			b.Fatal("Table 1 values drifted")
		}
	}
}

// BenchmarkTable2 optimizes the TPC-H queries with each algorithm (the
// optimization-time columns of Table 2).
func BenchmarkTable2(b *testing.B) {
	for name, q := range tpch.Queries() {
		for _, alg := range []struct {
			name string
			a    core.Algorithm
			f    float64
		}{
			{"EA", core.AlgEAPrune, 0},
			{"H1", core.AlgH1, 0},
			{"H2", core.AlgH2, 1.03},
			{"DPhyp", core.AlgDPhyp, 0},
		} {
			b.Run(name+"/"+alg.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.Optimize(q, core.Options{Algorithm: alg.a, F: alg.f, Workers: 1}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// starQuery builds an n-relation star: a large fact relation inner-joined
// to n-1 keyed dimensions through foreign keys, grouped on a fact
// attribute. Star graphs are the parallel driver's best case: level L
// holds C(n-1, L-1) distinct subproblem keys, so every level fans out.
func starQuery(n int) *query.Query {
	q := query.New()
	fact := q.AddRelation("fact", 1_000_000)
	g := q.AddAttr(fact, "fact.g", 50)
	v := q.AddAttr(fact, "fact.v", 500_000)
	root := &query.OpNode{Kind: query.KindScan, Rel: fact}
	for i := 1; i < n; i++ {
		card := float64(100 * i)
		d := q.AddRelation(fmt.Sprintf("dim%d", i), card)
		pk := q.AddAttr(d, fmt.Sprintf("dim%d.pk", i), card)
		q.AddKey(d, pk)
		fk := q.AddAttr(fact, fmt.Sprintf("fact.fk%d", i), card)
		root = &query.OpNode{
			Kind:  query.KindJoin,
			Left:  root,
			Right: &query.OpNode{Kind: query.KindScan, Rel: d},
			Pred:  &query.Predicate{Left: []int{fk}, Right: []int{pk}, Selectivity: 1 / card},
		}
	}
	q.Root = root
	q.SetGrouping([]int{g}, aggfn.Vector{
		{Out: "cnt", Kind: aggfn.CountStar},
		{Out: "total", Kind: aggfn.Sum, Arg: q.AttrNames[v]},
	})
	return q
}

// chainQuery builds an n-relation chain R0 ⋈ R1 ⋈ … ⋈ R(n-1), grouped on
// attributes of both endpoints. Chains are the parallel driver's hardest
// case: level L holds only n-L+1 intervals, so the fan-out is narrow.
func chainQuery(n int) *query.Query {
	q := query.New()
	cards := make([]float64, n)
	for i := 0; i < n; i++ {
		cards[i] = float64(1000 * (1 + (i*7919)%97))
		q.AddRelation(fmt.Sprintf("R%d", i), cards[i])
	}
	root := &query.OpNode{Kind: query.KindScan, Rel: 0}
	for i := 1; i < n; i++ {
		la := q.AddAttr(i-1, fmt.Sprintf("R%d.j%d", i-1, i), cards[i-1]/2)
		ra := q.AddAttr(i, fmt.Sprintf("R%d.j%d", i, i), cards[i]/2)
		root = &query.OpNode{
			Kind:  query.KindJoin,
			Left:  root,
			Right: &query.OpNode{Kind: query.KindScan, Rel: i},
			Pred:  &query.Predicate{Left: []int{la}, Right: []int{ra}, Selectivity: 2 / cards[i]},
		}
	}
	q.Root = root
	g0 := q.AddAttr(0, "R0.g", 20)
	gn := q.AddAttr(n-1, fmt.Sprintf("R%d.g", n-1), 20)
	v := q.AddAttr(0, "R0.v", cards[0])
	q.SetGrouping([]int{g0, gn}, aggfn.Vector{
		{Out: "cnt", Kind: aggfn.CountStar},
		{Out: "total", Kind: aggfn.Sum, Arg: q.AttrNames[v]},
	})
	return q
}

// BenchmarkOptimizeParallel measures the parallel DP driver
// (Options.Workers) on 12-relation chain and star workloads. Workers: 1 is
// the sequential reference; plans are bit-identical for every worker
// count, so the ns/op ratio between the sub-benchmarks is a pure speedup
// measurement. Run on a multi-core machine to see the scaling (per-level
// barriers bound the speedup by the widest level's task count; star
// queries fan out much wider than chains).
func BenchmarkOptimizeParallel(b *testing.B) {
	shapes := []struct {
		name string
		q    *query.Query
	}{
		{"star12", starQuery(12)},
		{"chain12", chainQuery(12)},
	}
	algs := []struct {
		name string
		alg  core.Algorithm
	}{
		{"H1", core.AlgH1},
		{"EA-Prune", core.AlgEAPrune},
	}
	for _, sh := range shapes {
		for _, a := range algs {
			for _, w := range []int{1, 2, 4, 8} {
				b.Run(fmt.Sprintf("%s/%s/workers=%d", sh.name, a.name, w), func(b *testing.B) {
					var contention int64
					for i := 0; i < b.N; i++ {
						res, err := core.Optimize(sh.q, core.Options{Algorithm: a.alg, Workers: w})
						if err != nil {
							b.Fatal(err)
						}
						contention = res.Stats.ShardContention
					}
					b.ReportMetric(float64(contention), "contended-locks")
				})
			}
		}
	}
}

// BenchmarkLargeEnumeration measures the wide set representation past
// the 63-relation fast path: 100-relation chain and star shapes under
// the generators that stay feasible at that scale, sequentially and with
// the sharded parallel DP. The chain/H1 configurations enumerate exactly
// (166,650 csg-cmp-pairs through the real parallel driver); the star
// configurations and the beam search run against a 20,000-pair budget
// and measure the enumeration-abort + deterministic greedy fallback —
// exact beam DP on a 100-chain builds ~16 trees per pair and would
// dominate the smoke by minutes, and exact star enumeration is
// exponential at any width. Plans are bit-identical across worker
// counts, budgets included.
func BenchmarkLargeEnumeration(b *testing.B) {
	shapes := []struct {
		name string
		q    *query.Query
	}{
		{"chain100", randquery.Chain(100)},
		{"star100", randquery.Star(100)},
	}
	algs := []struct {
		name  string
		alg   core.Algorithm
		width int
	}{
		{"H1", core.AlgH1, 0},
		{"Beam", core.AlgBeam, 4},
	}
	for _, sh := range shapes {
		for _, a := range algs {
			budget := 20000
			if sh.name == "chain100" && a.alg == core.AlgH1 {
				budget = 0 // exact: the default large-query budget covers a 100-chain
			}
			for _, w := range []int{1, 4} {
				b.Run(fmt.Sprintf("%s/%s/workers=%d", sh.name, a.name, w), func(b *testing.B) {
					var pairs int
					for i := 0; i < b.N; i++ {
						res, err := core.Optimize(sh.q, core.Options{
							Algorithm: a.alg, BeamWidth: a.width, Workers: w, PairBudget: budget,
						})
						if err != nil {
							b.Fatal(err)
						}
						pairs = res.Stats.CsgCmpPairs
					}
					b.ReportMetric(float64(pairs), "pairs")
				})
			}
		}
	}
}

// BenchmarkCsgCmpEnumeration isolates the DPhyp substrate (ablation:
// enumeration cost without plan construction).
func BenchmarkCsgCmpEnumeration(b *testing.B) {
	for _, n := range []int{8, 12, 16} {
		qs := workload(n, 1)
		b.Run(fmt.Sprintf("relations=%d", n), func(b *testing.B) {
			det := detectOf(b, qs[0])
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if len(det.Graph.CsgCmpPairs()) == 0 {
					b.Fatal("no pairs")
				}
			}
		})
	}
}

func detectOf(b *testing.B, q *query.Query) *conflict.Detection[bitset.Set64] {
	b.Helper()
	return conflict.Detect[bitset.Set64](q)
}

// BenchmarkAblationPruning quantifies the paper's central engineering
// choice (Sec. 4.6): how many plans the dominance pruning keeps versus the
// exhaustive table, at identical final plan quality. Reported metrics:
// plans retained across the DP table ("kept") and operator trees
// constructed ("built").
func BenchmarkAblationPruning(b *testing.B) {
	for _, n := range []int{5, 7, 8} {
		qs := workload(n, 3)
		for _, cfg := range []struct {
			name string
			alg  core.Algorithm
		}{
			{"EA-All", core.AlgEAAll},
			{"EA-Prune", core.AlgEAPrune},
		} {
			b.Run(fmt.Sprintf("%s/relations=%d", cfg.name, n), func(b *testing.B) {
				var kept, built float64
				for i := 0; i < b.N; i++ {
					kept, built = 0, 0
					for _, q := range qs {
						res, err := core.Optimize(q, core.Options{Algorithm: cfg.alg, Workers: 1})
						if err != nil {
							b.Fatal(err)
						}
						kept += float64(res.Stats.TablePlans)
						built += float64(res.Stats.PlansBuilt)
					}
				}
				b.ReportMetric(kept/float64(len(qs)), "kept/query")
				b.ReportMetric(built/float64(len(qs)), "built/query")
			})
		}
	}
}

// BenchmarkAblationEagerVariants measures the enumeration overhead the
// eager-aggregation variants add on top of plain join ordering: DPhyp
// builds one tree per (pair, operator), H1 up to four (Fig. 8).
func BenchmarkAblationEagerVariants(b *testing.B) {
	for _, n := range []int{8, 12} {
		qs := workload(n, 4)
		for _, cfg := range []struct {
			name string
			alg  core.Algorithm
		}{
			{"base-trees-only", core.AlgDPhyp},
			{"with-eager-variants", core.AlgH1},
		} {
			b.Run(fmt.Sprintf("%s/relations=%d", cfg.name, n), func(b *testing.B) {
				var built float64
				for i := 0; i < b.N; i++ {
					built = 0
					for _, q := range qs {
						res, err := core.Optimize(q, core.Options{Algorithm: cfg.alg, Workers: 1})
						if err != nil {
							b.Fatal(err)
						}
						built += float64(res.Stats.PlansBuilt)
					}
				}
				b.ReportMetric(built/float64(len(qs)), "built/query")
			})
		}
	}
}

// BenchmarkExecution runs the motivating query's lazy and eager plans on
// generated data — the execution-side counterpart of the paper's HyPer
// measurements (2140 ms vs 1.51 ms at SF-1).
func BenchmarkExecution(b *testing.B) {
	q := tpch.Ex()
	data := tpch.GenerateData(rand.New(rand.NewSource(1)), q, tpch.ExecutionScale("Ex"))
	for _, cfg := range []struct {
		name string
		alg  core.Algorithm
	}{
		{"lazy-DPhyp", core.AlgDPhyp},
		{"eager-EA-Prune", core.AlgEAPrune},
	} {
		res, err := core.Optimize(q, core.Options{Algorithm: cfg.alg, Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := engine.Exec(q, res.Plan, data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExecute measures the execution runtime itself on the
// 3-relation join-aggregate core of TPC-H Q3 (customer ⋈ orders ⋈
// lineitem, grouped with a sum) at three data scales. Two axes:
//
//   - engine=slot is the live executor (schema-resolved slots, hash
//     joins, typed hash aggregation); engine=seed is the frozen
//     map-tuple/nested-loop reference executor it replaced. Their ns/op
//     ratio at equal plan and scale is the runtime speedup (the
//     acceptance bar is ≥5x at the largest scale).
//   - plan=lazy (DPhyp) vs plan=eager (EA-Prune) separates the plan
//     effect from the runtime effect.
//
// Data generation is excluded from timing; the slot engine consumes
// columnar tables directly, the seed engine its map-tuple conversion.
func BenchmarkExecute(b *testing.B) {
	q := tpch.Q3()
	plans := []struct {
		name string
		alg  core.Algorithm
	}{
		{"lazy", core.AlgDPhyp},
		{"eager", core.AlgEAPrune},
	}
	for _, sf := range []float64{1, 4, 16} {
		tables := tpch.GenerateTables(rand.New(rand.NewSource(1)), q, tpch.ExecutionScaleAt("Q3", sf))
		data := engine.Data{}
		for id, tab := range tables {
			data[id] = tab.Rel()
		}
		for _, pl := range plans {
			res, err := core.Optimize(q, core.Options{Algorithm: pl.alg, Workers: 1})
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("engine=slot/plan=%s/sf=%g", pl.name, sf), func(b *testing.B) {
				var rows float64
				for i := 0; i < b.N; i++ {
					tab, stats, err := engine.ExecProfiled(q, res.Plan, tables)
					if err != nil {
						b.Fatal(err)
					}
					if tab.Card() == 0 {
						b.Fatal("empty result")
					}
					rows += stats.ActualCout
				}
				if secs := b.Elapsed().Seconds(); secs > 0 {
					b.ReportMetric(rows/secs, "rows/s")
				}
			})
			b.Run(fmt.Sprintf("engine=seed/plan=%s/sf=%g", pl.name, sf), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					rel, err := engine.ExecRef(q, res.Plan, data)
					if err != nil {
						b.Fatal(err)
					}
					if rel.Card() == 0 {
						b.Fatal("empty result")
					}
				}
			})
		}
	}
}

// BenchmarkExecuteParallel measures morsel-driven parallel execution
// (engine.ExecOptions.Workers) on the Q3 core at sf=10: lazy and eager
// plans × workers 1/2/4/8. Results are bit-identical for every worker
// count (the equivalence tests enforce it), so the ns/op ratio between
// the sub-benchmarks is a pure speedup measurement; workers=1 is the
// sequential reference path. Run on a multi-core machine to see the
// scaling — the acceptance bar is ≥2x at 4 workers on a ≥4-core runner.
func BenchmarkExecuteParallel(b *testing.B) {
	q := tpch.Q3()
	tables := tpch.GenerateTables(rand.New(rand.NewSource(1)), q, tpch.ExecutionScaleAt("Q3", 10))
	for _, pl := range []struct {
		name string
		alg  core.Algorithm
	}{
		{"lazy", core.AlgDPhyp},
		{"eager", core.AlgEAPrune},
	} {
		res, err := core.Optimize(q, core.Options{Algorithm: pl.alg, Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		for _, w := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("plan=%s/workers=%d", pl.name, w), func(b *testing.B) {
				var rows float64
				for i := 0; i < b.N; i++ {
					tab, stats, err := engine.ExecProfiledOpts(q, res.Plan, tables, engine.ExecOptions{Workers: w})
					if err != nil {
						b.Fatal(err)
					}
					if tab.Card() == 0 {
						b.Fatal("empty result")
					}
					rows += stats.ActualCout
				}
				if secs := b.Elapsed().Seconds(); secs > 0 {
					b.ReportMetric(rows/secs, "rows/s")
				}
			})
		}
	}
}

// BenchmarkBatchVsRow measures the vectorized batch runtime against the
// row-at-a-time reference on the Q3 and Q5 cores: eager plans at sf 1
// and 4, single-threaded (the two runtimes produce bit-identical
// results, so the ns/op and rows/s ratios are pure runtime speedups).
// The batch axis varies the rows-per-batch granularity around the
// default (1024). The acceptance bar is ≥2x rows/s over runtime=row on
// the Q3 core at sf ≥ 4.
func BenchmarkBatchVsRow(b *testing.B) {
	type rtCase struct {
		name string
		opts engine.ExecOptions
	}
	cases := []rtCase{
		{"runtime=row", engine.ExecOptions{Workers: 1}},
		{"runtime=batch/batch=256", engine.ExecOptions{Workers: 1, Runtime: engine.RuntimeBatch, BatchSize: 256}},
		{"runtime=batch/batch=1024", engine.ExecOptions{Workers: 1, Runtime: engine.RuntimeBatch, BatchSize: 1024}},
		{"runtime=batch/batch=4096", engine.ExecOptions{Workers: 1, Runtime: engine.RuntimeBatch, BatchSize: 4096}},
	}
	for _, qn := range []string{"Q3", "Q5"} {
		q := tpch.Queries()[qn]
		res, err := core.Optimize(q, core.Options{Algorithm: core.AlgEAPrune, Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		for _, sf := range []float64{1, 4} {
			tables := tpch.GenerateTables(rand.New(rand.NewSource(1)), q, tpch.ExecutionScaleAt(qn, sf))
			for _, c := range cases {
				b.Run(fmt.Sprintf("query=%s/sf=%g/%s", qn, sf, c.name), func(b *testing.B) {
					b.ReportAllocs()
					var rows float64
					for i := 0; i < b.N; i++ {
						_, stats, err := engine.ExecProfiledOpts(q, res.Plan, tables, c.opts)
						if err != nil {
							b.Fatal(err)
						}
						// The final result can be legitimately empty at a
						// small scale factor (Q5's filters at sf 1); zero
						// rows at every operator means it didn't run.
						if stats.ActualCout == 0 {
							b.Fatal("plan produced no rows at any operator")
						}
						rows += stats.ActualCout
					}
					if secs := b.Elapsed().Seconds(); secs > 0 {
						b.ReportMetric(rows/secs, "rows/s")
					}
				})
			}
		}
	}
}

// BenchmarkBeamWidths evaluates the beam-search extension (our
// contribution in the paper's future-work direction): per width, the
// runtime is the benchmark time and the reported metric is the average
// relative plan cost against EA-Prune.
func BenchmarkBeamWidths(b *testing.B) {
	n := 8
	qs := workload(n, 6)
	opt := make([]float64, len(qs))
	for i, q := range qs {
		res, err := core.Optimize(q, core.Options{Algorithm: core.AlgEAPrune, Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		opt[i] = res.Plan.Cost
	}
	for _, k := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("width=%d/relations=%d", k, n), func(b *testing.B) {
			ratioSum, samples := 0.0, 0
			for i := 0; i < b.N; i++ {
				for qi, q := range qs {
					res, err := core.Optimize(q, core.Options{Algorithm: core.AlgBeam, BeamWidth: k, Workers: 1})
					if err != nil {
						b.Fatal(err)
					}
					ratioSum += res.Plan.Cost / opt[qi]
					samples++
				}
			}
			b.ReportMetric(ratioSum/float64(samples), "relcost")
		})
	}
}

// BenchmarkAblationFDReduce compares the paper-faithful estimator with the
// FD-reducing one (Options.FDReduceGroups): the reported metric is the
// DPhyp/EA-Prune cost ratio under each mode. The sharper estimator
// improves the lazy baseline, shrinking the measurable gain — which is why
// the default stays paper-faithful.
func BenchmarkAblationFDReduce(b *testing.B) {
	qs := tpch.Queries()
	for _, mode := range []struct {
		name   string
		reduce bool
	}{
		{"paper-faithful", false},
		{"fd-reduced", true},
	} {
		b.Run(mode.name+"/Q10", func(b *testing.B) {
			q := qs["Q10"]
			var ratio float64
			for i := 0; i < b.N; i++ {
				d, err := core.Optimize(q, core.Options{Algorithm: core.AlgDPhyp, FDReduceGroups: mode.reduce, Workers: 1})
				if err != nil {
					b.Fatal(err)
				}
				p, err := core.Optimize(q, core.Options{Algorithm: core.AlgEAPrune, FDReduceGroups: mode.reduce, Workers: 1})
				if err != nil {
					b.Fatal(err)
				}
				ratio = p.Plan.Cost / d.Plan.Cost
			}
			b.ReportMetric(ratio, "EA/DPhyp")
		})
	}
}

// BenchmarkFeedback measures the cardinality feedback loop
// (engine.Reoptimize) end to end on TPC-H Q5 — the query whose plan the
// measured cardinalities actually flip — at two data scales × two worker
// counts (workers drive both the optimizer and the morsel-driven
// execution in every round). Reported metrics: rounds to convergence,
// whether feedback changed the plan (1/0), and the plan-level C_out
// q-error reduction of the final round versus the model-only baseline
// (the acceptance bar is ≥10x with a changed plan at sf=1).
func BenchmarkFeedback(b *testing.B) {
	q := tpch.Queries()["Q5"]
	for _, sf := range []float64{1, 4} {
		tables := tpch.GenerateTables(rand.New(rand.NewSource(1)), q, tpch.ExecutionScaleAt("Q5", sf))
		for _, w := range []int{1, 4} {
			b.Run(fmt.Sprintf("sf=%g/workers=%d", sf, w), func(b *testing.B) {
				var rounds, changed int
				var reduction float64
				for i := 0; i < b.N; i++ {
					res, err := engine.Reoptimize(q, tables, engine.FeedbackOptions{
						Opt:  core.Options{Algorithm: core.AlgEAPrune, Workers: w},
						Exec: engine.ExecOptions{Workers: w},
					})
					if err != nil {
						b.Fatal(err)
					}
					if !res.Converged {
						b.Fatal("feedback loop did not converge")
					}
					rounds = len(res.Rounds)
					changed = 0
					if res.PlanChanged() {
						changed = 1
					}
					reduction = res.First().Stats.CoutQError() / res.Final().Stats.CoutQError()
				}
				b.ReportMetric(float64(rounds), "rounds")
				b.ReportMetric(float64(changed), "plan-changed")
				b.ReportMetric(reduction, "qerr-reduction")
			})
		}
	}
}

// BenchmarkSortVsHash measures the sort-based physical layer against the
// hash layer on Q3 and Q5 at two data scales. phys=hash is the baseline,
// phys=sort forces sort-merge join / sort-group aggregation wherever
// supported, phys=auto lets both compete per plan class. Results are
// identical across all modes (the differential suites enforce it);
// ns/op isolates the physical-layer effect and the reported metrics
// show how many sorts the chosen plan performs versus eliminates by
// reusing interesting orders (auto's win is eliminated sorts replacing
// hash-table builds).
func BenchmarkSortVsHash(b *testing.B) {
	modes := []struct {
		name string
		mode core.PhysMode
	}{
		{"hash", core.PhysModeHash},
		{"sort", core.PhysModeSort},
		{"auto", core.PhysModeAuto},
	}
	for _, qn := range []string{"Q3", "Q5"} {
		q := tpch.Queries()[qn]
		for _, sf := range []float64{1, 4} {
			tables := tpch.GenerateTables(rand.New(rand.NewSource(1)), q, tpch.ExecutionScaleAt(qn, sf))
			for _, m := range modes {
				res, err := core.Optimize(q, core.Options{Algorithm: core.AlgEAPrune, Workers: 1, Phys: m.mode})
				if err != nil {
					b.Fatal(err)
				}
				perf, elim := res.Plan.SortStats()
				b.Run(fmt.Sprintf("%s/sf=%g/phys=%s", qn, sf, m.name), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						tab, err := engine.ExecTables(q, res.Plan, tables)
						if err != nil {
							b.Fatal(err)
						}
						if tab.Card() == 0 && qn == "Q3" {
							b.Fatal("empty result")
						}
					}
					b.ReportMetric(float64(perf), "sorts-performed")
					b.ReportMetric(float64(elim), "sorts-eliminated")
				})
			}
		}
	}
}

// BenchmarkServiceThroughput drives the embedded query-service layer
// with concurrent sessions replaying the Q3 and Q5 shapes against one
// shared engine. cache=cold issues NoCache requests, so every request
// pays the full EA-Prune enumeration; cache=warm primes the plan cache
// first, so every measured request skips DP and goes straight to
// execution. The qps metric is completed requests per second — CI
// records both variants, and the warm/cold ratio is the cache's payoff
// on repeated shapes. The instance is small (sf 0.2) and the physical
// mode is auto (hash and sort layers compete, the priciest enumeration)
// so the workload is optimization-bound — the regime the plan cache is
// for; at large scale factors execution dominates and the ratio
// approaches 1 regardless of the cache.
func BenchmarkServiceThroughput(b *testing.B) {
	type shape struct {
		name string
		q    *query.Query
		data engine.TableData
	}
	var shapes []shape
	for _, name := range []string{"Q3", "Q5"} {
		q := tpch.Queries()[name]
		data := tpch.GenerateTables(rand.New(rand.NewSource(1)), q, tpch.ExecutionScaleAt(name, 0.2))
		shapes = append(shapes, shape{name, q, data})
	}
	for _, cache := range []string{"cold", "warm"} {
		warm := cache == "warm"
		for _, sessions := range []int{1, 4} {
			b.Run(fmt.Sprintf("cache=%s/sessions=%d", cache, sessions), func(b *testing.B) {
				eng := service.NewEngine(service.EngineOptions{Workers: 2, MaxConcurrent: sessions})
				defer eng.Close()
				for _, sh := range shapes {
					eng.Register(sh.name, sh.data)
				}
				issue := func(sess *service.Session, i int) {
					sh := shapes[i%len(shapes)]
					_, err := sess.Execute(sh.q, service.Request{
						Opt:     core.Options{Algorithm: core.AlgEAPrune, Workers: 1, Phys: core.PhysModeAuto},
						Dataset: sh.name,
						NoCache: !warm,
					})
					if err != nil {
						b.Error(err)
					}
				}
				if warm {
					sess := eng.NewSession()
					for i := range shapes {
						issue(sess, i)
					}
				}
				b.ResetTimer()
				var next atomic.Int64
				var wg sync.WaitGroup
				wg.Add(sessions)
				for s := 0; s < sessions; s++ {
					go func() {
						defer wg.Done()
						sess := eng.NewSession()
						for {
							i := int(next.Add(1)) - 1
							if i >= b.N {
								return
							}
							issue(sess, i)
						}
					}()
				}
				wg.Wait()
				if secs := b.Elapsed().Seconds(); secs > 0 {
					b.ReportMetric(float64(b.N)/secs, "qps")
				}
			})
		}
	}
}

// BenchmarkTraceOverhead measures the cost of the observability layer on
// plan execution: the tracing=off arm is the PR 9 baseline hot path (one
// nil-pointer test per operator) and must stay within 2% of it — the CI
// benchmark lane records both arms so a regression of the off arm is
// visible as a plain ns/op jump. The tracing=on arm bounds the opt-in
// cost: spans are recorded per operator barrier by the driver goroutine,
// so overhead is O(plan nodes), not O(rows).
func BenchmarkTraceOverhead(b *testing.B) {
	for _, name := range []string{"Q3", "Q5"} {
		q := tpch.Queries()[name]
		tables := tpch.GenerateTables(rand.New(rand.NewSource(1)), q, tpch.ExecutionScaleAt(name, 4))
		res, err := core.Optimize(q, core.Options{Algorithm: core.AlgEAPrune})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("query=%s/tracing=off", name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := engine.ExecProfiledOpts(q, res.Plan, tables, engine.ExecOptions{Workers: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("query=%s/tracing=on", name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr := obs.NewTrace()
				if _, _, err := engine.ExecProfiledOpts(q, res.Plan, tables, engine.ExecOptions{Workers: 1, Trace: tr}); err != nil {
					b.Fatal(err)
				}
				if tr.Len() == 0 {
					b.Fatal("no spans recorded")
				}
			}
		})
	}
}
