module eagg

go 1.24

// Tool dependency: staticcheck is pinned here (a Go 1.24 `tool`
// directive) instead of an @version in CI, so lint runs the same
// version everywhere and upgrades happen through go.mod review. The
// module has no go.sum because nothing in the library imports it; CI
// runs `go mod tidy` before `go tool staticcheck` to resolve it.
tool honnef.co/go/tools/cmd/staticcheck

require honnef.co/go/tools v0.6.1
