module eagg

go 1.24
